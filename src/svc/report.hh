/**
 * @file
 * The "cables-service-report" v1 schema: one JSON document per service
 * run, carrying the workload shape, throughput, the virtual-time
 * latency distribution (p50/p90/p99/p999), per-shard outcomes and the
 * autoscaler's event log. Like every other report in the repo it is a
 * pure function of the configuration, so --repeat byte-identity holds.
 *
 * Document layout:
 *
 *   {
 *     "schema": "cables-service-report", "schema_version": 1,
 *     "label": "...",
 *     "config": { backend, shards, keys, ..., arrival: {...},
 *                 scale: {...} },
 *     "requests": { injected, completed, gets, puts, hits, misses },
 *     "throughput_rps": <double>,
 *     "makespan_ms": <double>,
 *     "latency_us": { "all": {count, mean, p50, p90, p99, p999, max},
 *                     "get": {...}, "put": {...}, "burst": {...} },
 *     "shards": [ { shard, node, completed, backlog_peak } ],
 *     "scale_events": [ { kind, node, at_ms, shard } ],
 *     "checksum": <int>
 *   }
 *
 * The "burst" latency block and "scale_events" may be empty ({} with
 * count 0 / []) when the run had no burst window or no autoscaler.
 */

#ifndef CABLES_SVC_REPORT_HH
#define CABLES_SVC_REPORT_HH

#include <string>

#include "svc/service.hh"
#include "util/json.hh"

namespace cables {
namespace svc {

constexpr const char *reportSchemaName = "cables-service-report";
constexpr int reportSchemaVersion = 1;

/** Latency Stat as a schema block (values in the Stat's own unit). */
util::Json latencyJson(const Stat &s);

/** The full service-report document for one run. */
util::Json serviceReport(const std::string &label,
                         const ServiceConfig &cfg,
                         const ServiceResult &res);

/**
 * Validate that @p doc is a well-formed cables-service-report. On
 * failure returns false and stores a reason in @p why.
 */
bool validateServiceReport(const util::Json &doc,
                           std::string *why = nullptr);

} // namespace svc
} // namespace cables

#endif // CABLES_SVC_REPORT_HH
