/**
 * @file
 * Simulated-time base types. One Tick is one nanosecond of simulated
 * time; helper literals build readable durations (7800 * sim::US etc.).
 */

#ifndef CABLES_SIM_TICKS_HH
#define CABLES_SIM_TICKS_HH

#include <cstdint>

namespace cables {
namespace sim {

/** Simulated time in nanoseconds. */
using Tick = int64_t;

/** Maximum representable tick, used as "never". */
constexpr Tick MaxTick = INT64_MAX;

constexpr Tick NS = 1;
constexpr Tick US = 1000 * NS;
constexpr Tick MS = 1000 * US;
constexpr Tick SEC = 1000 * MS;

/** Convert ticks to floating point microseconds (for reports). */
constexpr double
toUs(Tick t)
{
    return static_cast<double>(t) / US;
}

/** Convert ticks to floating point milliseconds (for reports). */
constexpr double
toMs(Tick t)
{
    return static_cast<double>(t) / MS;
}

/** Convert ticks to floating point seconds (for reports). */
constexpr double
toSec(Tick t)
{
    return static_cast<double>(t) / SEC;
}

} // namespace sim
} // namespace cables

#endif // CABLES_SIM_TICKS_HH
