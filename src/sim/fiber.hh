/**
 * @file
 * Cooperative user-level fibers built on ucontext. Each simulated thread
 * owns one Fiber; the Engine switches between fibers and its own
 * scheduler context. Fibers never run concurrently — the whole simulation
 * is single host-threaded and therefore deterministic.
 */

#ifndef CABLES_SIM_FIBER_HH
#define CABLES_SIM_FIBER_HH

#include <ucontext.h>

#include <cstddef>
#include <functional>
#include <memory>

/*
 * AddressSanitizer must be told about stack switches, or its fake-stack
 * bookkeeping misattributes frames and reports spurious
 * stack-use-after-return once fibers interleave. gcc defines
 * __SANITIZE_ADDRESS__; clang exposes the feature test.
 */
#if defined(__SANITIZE_ADDRESS__)
#define CABLES_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define CABLES_ASAN 1
#endif
#endif

namespace cables {
namespace sim {

/**
 * A suspendable execution context with its own stack.
 *
 * The owner (the Engine) calls switchTo() to enter the fiber; the fiber
 * returns control by calling switchBack(), or implicitly when its entry
 * function returns (after which finished() is true).
 */
class Fiber
{
  public:
    /** Default stack size: enough for recursive kernels (FFT, octrees). */
    static constexpr size_t defaultStackSize = 256 * 1024;

    /**
     * Create a fiber that will run @p fn when first switched to.
     *
     * @param fn entry function; runs on the fiber's own stack.
     * @param stack_size stack size in bytes.
     */
    explicit Fiber(std::function<void()> fn,
                   size_t stack_size = defaultStackSize);

    ~Fiber();

    Fiber(const Fiber &) = delete;
    Fiber &operator=(const Fiber &) = delete;

    /**
     * Thrown from the suspension point of an abandoned fiber when its
     * destructor unwinds the stack. Guest code must not catch it.
     */
    struct Unwind
    {};

    /** Transfer control from the caller's context into the fiber. */
    void switchTo();

    /** Called from inside the fiber: return control to switchTo's caller. */
    void switchBack();

    /** True once the entry function has returned. */
    bool finished() const { return finished_; }

  private:
    static void trampoline();

    std::function<void()> entry;
    std::unique_ptr<char[]> stack;
    size_t stackSize_;
    ucontext_t context;
    ucontext_t returnContext;
    bool started = false;
    bool finished_ = false;
    bool unwinding_ = false;

#ifdef CABLES_ASAN
    /// ASan fake-stack handles for each side of a switch, plus the
    /// caller's stack bounds (learned from the first switch in).
    void *callerFakeStack_ = nullptr;
    void *fiberFakeStack_ = nullptr;
    const void *callerStackBottom_ = nullptr;
    size_t callerStackSize_ = 0;
#endif
};

} // namespace sim
} // namespace cables

#endif // CABLES_SIM_FIBER_HH
