#include "sim/trace.hh"

#include <algorithm>
#include <cstdio>
#include <numeric>

namespace cables {
namespace sim {

void
Tracer::nameThread(int pid, int tid, const std::string &name)
{
    util::Json args = util::Json::object();
    args.set("name", name);
    events_.push_back(TraceEvent{0, 0, 'M', pid, tid, "__metadata",
                                 "thread_name", std::move(args)});
}

namespace {

/** Ticks (ns) to Chrome's microsecond timestamps, deterministically. */
std::string
tsUs(Tick t)
{
    return util::jsonNumber(static_cast<double>(t) / 1000.0);
}

void
appendEvent(std::string &out, const TraceEvent &e)
{
    out += "{\"name\":\"";
    out += util::jsonEscape(e.name);
    out += "\",\"cat\":\"";
    out += util::jsonEscape(e.cat);
    out += "\",\"ph\":\"";
    out += e.ph;
    out += "\",\"pid\":";
    out += std::to_string(e.pid);
    out += ",\"tid\":";
    out += std::to_string(e.tid);
    if (e.ph != 'M') {
        out += ",\"ts\":";
        out += tsUs(e.ts);
        if (e.ph == 'X') {
            out += ",\"dur\":";
            out += tsUs(e.dur);
        }
        // Instants need an explicit scope for the viewers.
        if (e.ph == 'i')
            out += ",\"s\":\"t\"";
    }
    if (!e.args.isNull()) {
        out += ",\"args\":";
        out += e.args.dump();
    }
    out += '}';
}

} // namespace

std::string
Tracer::exportChrome() const
{
    // Metadata first (viewers expect it anywhere, but leading metadata
    // keeps the non-metadata tail strictly time-ordered), then events
    // sorted by virtual time with record order as the tie-break.
    std::vector<size_t> order(events_.size());
    std::iota(order.begin(), order.end(), size_t(0));
    std::stable_sort(order.begin(), order.end(),
                     [this](size_t a, size_t b) {
                         const TraceEvent &ea = events_[a];
                         const TraceEvent &eb = events_[b];
                         bool ma = ea.ph == 'M', mb = eb.ph == 'M';
                         if (ma != mb)
                             return ma;
                         if (ma)
                             return false; // metadata: record order
                         return ea.ts < eb.ts;
                     });

    std::string out = "{\"traceEvents\":[";
    bool first = true;
    for (size_t i : order) {
        if (!first)
            out += ",\n";
        first = false;
        appendEvent(out, events_[i]);
    }
    out += "],\"displayTimeUnit\":\"ms\",";
    out += "\"otherData\":{\"clock\":\"virtual\",\"unit\":\"us\"}}";
    out += '\n';
    return out;
}

bool
Tracer::writeChrome(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        return false;
    std::string text = exportChrome();
    size_t n = std::fwrite(text.data(), 1, text.size(), f);
    bool ok = n == text.size();
    ok = std::fclose(f) == 0 && ok;
    return ok;
}

} // namespace sim
} // namespace cables
