#include "sim/trace.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>

#include "util/logging.hh"

namespace cables {
namespace sim {

const char *
spanCompName(SpanComp c)
{
    switch (c) {
      case SpanComp::Issue:
        return "issue";
      case SpanComp::Queue:
        return "queue";
      case SpanComp::Wire:
        return "wire";
      case SpanComp::Handler:
        return "handler";
      case SpanComp::Reply:
        return "reply";
      case SpanComp::Apply:
        return "apply";
    }
    return "?";
}

void
Tracer::nameThread(int pid, int tid, const std::string &name)
{
    util::Json args = util::Json::object();
    args.set("name", name);
    events_.push_back(TraceEvent{0, 0, 'M', pid, tid, "__metadata",
                                 "thread_name", std::move(args)});
}

uint64_t
Tracer::beginSpan(const char *op, Tick start, int pid, int tid,
                  bool detached)
{
    if (!spansEnabled_)
        return 0;
    if (spans_.size() >= spanCapacity_) {
        ++droppedSpans_;
        return 0;
    }
    Span s;
    s.flow = nextFlow_++;
    s.start = start;
    s.end = start;
    s.pid = pid;
    s.tid = tid;
    s.op = op;
    if (tid >= 0) {
        auto it = openSpans_.find(tid);
        if (it != openSpans_.end() && !it->second.empty())
            s.parent = it->second.back();
        if (!detached)
            openSpans_[tid].push_back(s.flow);
    }
    spans_.push_back(std::move(s));
    return spans_.back().flow;
}

void
Tracer::endSpan(uint64_t id, Tick end)
{
    if (id == 0)
        return;
    Span &s = spans_[id - 1];
    panic_if(!s.open, "span {} ({}) ended twice", id, s.op);
    s.end = end;
    Tick attributed = 0;
    for (int c = 0; c < kNumSpanComps; ++c)
        attributed += s.comp[c];
    Tick remainder = (end - s.start) - attributed;
    panic_if(remainder < 0,
             "span {} ({}): components {} exceed duration {}", id, s.op,
             attributed, end - s.start);
    s.comp[static_cast<int>(SpanComp::Apply)] += remainder;
    s.open = false;
    auto it = openSpans_.find(s.tid);
    if (it != openSpans_.end() && !it->second.empty() &&
        it->second.back() == id) {
        it->second.pop_back();
        if (it->second.empty())
            openSpans_.erase(it);
    }
}

namespace {

/** Ticks (ns) to Chrome's microsecond timestamps, deterministically. */
std::string
tsUs(Tick t)
{
    return util::jsonNumber(static_cast<double>(t) / 1000.0);
}

void
appendEvent(std::string &out, const TraceEvent &e)
{
    out += "{\"name\":\"";
    out += util::jsonEscape(e.name);
    out += "\",\"cat\":\"";
    out += util::jsonEscape(e.cat);
    out += "\",\"ph\":\"";
    out += e.ph;
    out += "\",\"pid\":";
    out += std::to_string(e.pid);
    out += ",\"tid\":";
    out += std::to_string(e.tid);
    if (e.ph != 'M') {
        out += ",\"ts\":";
        out += tsUs(e.ts);
        if (e.ph == 'X') {
            out += ",\"dur\":";
            out += tsUs(e.dur);
        }
        // Instants need an explicit scope for the viewers.
        if (e.ph == 'i')
            out += ",\"s\":\"t\"";
        // Flow events need the binding id; 'f' binds to the enclosing
        // slice so the arrow lands on the child span.
        if (e.ph == 's' || e.ph == 't' || e.ph == 'f') {
            out += ",\"id\":";
            out += std::to_string(e.id);
            if (e.ph == 'f')
                out += ",\"bp\":\"e\"";
        }
    }
    if (!e.args.isNull()) {
        out += ",\"args\":";
        out += e.args.dump();
    }
    out += '}';
}

} // namespace

std::vector<TraceEvent>
Tracer::spanEvents() const
{
    std::vector<TraceEvent> out;
    for (const Span &s : spans_) {
        if (s.open)
            continue;
        util::Json args = util::Json::object();
        args.set("flow", static_cast<int64_t>(s.flow));
        if (s.parent)
            args.set("parent", static_cast<int64_t>(s.parent));
        for (int c = 0; c < kNumSpanComps; ++c) {
            args.set(std::string(spanCompName(
                         static_cast<SpanComp>(c))) + "_us",
                     static_cast<double>(s.comp[c]) / 1000.0);
        }
        out.push_back(TraceEvent{s.start, s.end - s.start, 'X', s.pid,
                                 s.tid, "span", s.op, std::move(args),
                                 s.flow});
        // A flow arrow parent -> child: 's' on the parent's lane, 't'
        // and 'f' on the child's, all sharing the child's flow id.
        if (s.parent == 0 || s.parent > spans_.size())
            continue;
        const Span &p = spans_[s.parent - 1];
        if (p.open)
            continue;
        out.push_back(TraceEvent{s.start, 0, 's', p.pid, p.tid, "flow",
                                 s.op, util::Json(), s.flow});
        out.push_back(TraceEvent{s.start, 0, 't', s.pid, s.tid, "flow",
                                 s.op, util::Json(), s.flow});
        out.push_back(TraceEvent{s.end, 0, 'f', s.pid, s.tid, "flow",
                                 s.op, util::Json(), s.flow});
    }
    return out;
}

std::string
Tracer::exportChrome() const
{
    // Metadata first (viewers expect it anywhere, but leading metadata
    // keeps the non-metadata tail strictly time-ordered), then events
    // sorted by virtual time with record order as the tie-break.
    // Span-derived events sort after recorded events at equal
    // timestamps (they follow in the pre-sort index order), so a run
    // without spans exports byte-identically to before the span layer.
    std::vector<TraceEvent> derived = spanEvents();
    size_t n = events_.size();
    auto at = [&](size_t i) -> const TraceEvent & {
        return i < n ? events_[i] : derived[i - n];
    };
    std::vector<size_t> order(n + derived.size());
    std::iota(order.begin(), order.end(), size_t(0));
    std::stable_sort(order.begin(), order.end(),
                     [&](size_t a, size_t b) {
                         const TraceEvent &ea = at(a);
                         const TraceEvent &eb = at(b);
                         bool ma = ea.ph == 'M', mb = eb.ph == 'M';
                         if (ma != mb)
                             return ma;
                         if (ma)
                             return false; // metadata: record order
                         return ea.ts < eb.ts;
                     });

    std::string out = "{\"traceEvents\":[";
    bool first = true;
    for (size_t i : order) {
        if (!first)
            out += ",\n";
        first = false;
        appendEvent(out, at(i));
    }
    out += "],\"displayTimeUnit\":\"ms\",";
    out += "\"otherData\":{\"clock\":\"virtual\",\"unit\":\"us\"}}";
    out += '\n';
    return out;
}

util::Json
Tracer::spansReportJson() const
{
    struct OpAgg
    {
        std::vector<Tick> durs;
        std::array<Tick, kNumSpanComps> comp{};
    };
    std::map<std::string, OpAgg> ops;
    uint64_t closed = 0;
    for (const Span &s : spans_) {
        if (s.open)
            continue;
        ++closed;
        OpAgg &agg = ops[s.op];
        agg.durs.push_back(s.end - s.start);
        for (int c = 0; c < kNumSpanComps; ++c)
            agg.comp[c] += s.comp[c];
    }

    auto us = [](Tick t) {
        return util::Json(static_cast<double>(t) / 1000.0);
    };
    // Exact nearest-rank percentile over the sorted durations.
    auto rank = [](const std::vector<Tick> &v, double q) {
        size_t i = static_cast<size_t>(
            std::ceil(q * static_cast<double>(v.size())));
        return v[std::max<size_t>(i, 1) - 1];
    };

    util::Json doc = util::Json::object();
    doc.set("schema", "cables-spans-report");
    doc.set("schema_version", static_cast<int64_t>(1));
    doc.set("spans", static_cast<int64_t>(closed));
    doc.set("dropped_spans", static_cast<int64_t>(droppedSpans_));
    util::Json arr = util::Json::array();
    for (auto &kv : ops) {
        OpAgg &agg = kv.second;
        std::sort(agg.durs.begin(), agg.durs.end());
        util::Json e = util::Json::object();
        e.set("op", kv.first);
        e.set("count", static_cast<int64_t>(agg.durs.size()));
        e.set("p50_us", us(rank(agg.durs, 0.50)));
        e.set("p99_us", us(rank(agg.durs, 0.99)));
        e.set("max_us", us(agg.durs.back()));
        util::Json comp = util::Json::object();
        for (int c = 0; c < kNumSpanComps; ++c)
            comp.set(spanCompName(static_cast<SpanComp>(c)),
                     us(agg.comp[c]));
        e.set("components_us", std::move(comp));
        arr.push(std::move(e));
    }
    doc.set("ops", std::move(arr));
    return doc;
}

bool
validateSpansReport(const util::Json &doc, std::string *why)
{
    auto fail = [&](const std::string &msg) {
        if (why)
            *why = msg;
        return false;
    };
    if (!doc.isObject())
        return fail("document is not an object");
    if (doc.get("schema").asString() != "cables-spans-report")
        return fail("schema is not cables-spans-report");
    if (doc.get("schema_version").asInt() != 1)
        return fail("unsupported schema_version");
    for (const char *key : {"spans", "dropped_spans"}) {
        if (!doc.get(key).isNumber())
            return fail(std::string(key) + " missing or not a number");
    }
    const util::Json &ops = doc.get("ops");
    if (!ops.isArray())
        return fail("ops missing or not an array");
    for (size_t i = 0; i < ops.size(); ++i) {
        const util::Json &e = ops.at(i);
        if (!e.isObject())
            return fail(csprintf("ops[{}] is not an object", i));
        if (!e.get("op").isString())
            return fail(csprintf("ops[{}].op missing", i));
        for (const char *key : {"count", "p50_us", "p99_us", "max_us"}) {
            if (!e.get(key).isNumber())
                return fail(csprintf("ops[{}].{} missing or not a "
                                     "number", i, key));
        }
        const util::Json &comp = e.get("components_us");
        if (!comp.isObject())
            return fail(csprintf("ops[{}].components_us missing", i));
        for (int c = 0; c < kNumSpanComps; ++c) {
            const char *name = spanCompName(static_cast<SpanComp>(c));
            if (!comp.get(name).isNumber())
                return fail(csprintf("ops[{}].components_us.{} missing",
                                     i, name));
        }
    }
    return true;
}

bool
Tracer::writeChrome(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        return false;
    std::string text = exportChrome();
    size_t n = std::fwrite(text.data(), 1, text.size(), f);
    bool ok = n == text.size();
    ok = std::fclose(f) == 0 && ok;
    return ok;
}

} // namespace sim
} // namespace cables
