/**
 * @file
 * A minimal closable MPMC queue used by the parallel engine to hand
 * fibers between the scheduler and its worker pool.
 *
 * Deliberately boring: one mutex, one condition variable, a deque. The
 * queue carries a handful of items per simulated operation — the cost
 * of the lock is noise next to a fiber switch — and the simple shape
 * keeps it fully checkable under ThreadSanitizer without involving
 * ucontext fibers (see tests/test_worker_queue.cc).
 */

#ifndef CABLES_SIM_WORKQUEUE_HH
#define CABLES_SIM_WORKQUEUE_HH

#include <condition_variable>
#include <deque>
#include <mutex>

namespace cables {
namespace sim {

template <typename T>
class WorkQueue
{
  public:
    /** Enqueue @p v and wake one waiter. Pushing after close() drops. */
    void
    push(T v)
    {
        {
            std::lock_guard<std::mutex> g(m_);
            if (closed_)
                return;
            q_.push_back(std::move(v));
        }
        cv_.notify_one();
    }

    /** Non-blocking pop; false when the queue is momentarily empty. */
    bool
    tryPop(T &out)
    {
        std::lock_guard<std::mutex> g(m_);
        if (q_.empty())
            return false;
        out = std::move(q_.front());
        q_.pop_front();
        return true;
    }

    /**
     * Blocking pop: waits until an item arrives or the queue is closed.
     * Returns false only when closed and fully drained.
     */
    bool
    waitPop(T &out)
    {
        std::unique_lock<std::mutex> g(m_);
        cv_.wait(g, [&] { return closed_ || !q_.empty(); });
        if (q_.empty())
            return false;
        out = std::move(q_.front());
        q_.pop_front();
        return true;
    }

    /** Close the queue: waiters drain remaining items, then get false. */
    void
    close()
    {
        {
            std::lock_guard<std::mutex> g(m_);
            closed_ = true;
        }
        cv_.notify_all();
    }

    bool
    closed() const
    {
        std::lock_guard<std::mutex> g(m_);
        return closed_;
    }

    size_t
    size() const
    {
        std::lock_guard<std::mutex> g(m_);
        return q_.size();
    }

  private:
    mutable std::mutex m_;
    std::condition_variable cv_;
    std::deque<T> q_;
    bool closed_ = false;
};

} // namespace sim
} // namespace cables

#endif // CABLES_SIM_WORKQUEUE_HH
