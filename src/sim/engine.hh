/**
 * @file
 * The discrete-event simulation engine.
 *
 * Simulated threads are fibers with private virtual clocks. The engine
 * maintains the invariant that the fiber currently executing holds the
 * globally minimum clock among all runnable threads and pending events,
 * *at every visible operation*. Pure local computation merely advances
 * the local clock; before any operation that observes or mutates shared
 * simulation state (messages, locks, page tables) the caller invokes
 * sync(), which yields until the thread is earliest again.
 *
 * This "earliest-first" discipline gives deterministic, repeatable
 * parallel-time simulation on a single host thread.
 *
 * Parallel mode (EngineConfig) adds a host worker pool without giving
 * up that determinism: every runtime *operation* still executes on the
 * scheduler host thread in exact serial order, but the guest compute
 * segment *after* an operation — host FP work that never touches
 * engine state — may be handed to a worker when the thread is strictly
 * ahead of all other pending work by at least the lookahead window.
 * The fiber parks back onto the scheduler at its next operation, which
 * resumes it from a ready-queue ticket pre-allocated at hand-off time
 * in exactly the slot the serial engine would have used. See
 * DESIGN.md §11 for the equivalence argument.
 */

#ifndef CABLES_SIM_ENGINE_HH
#define CABLES_SIM_ENGINE_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <string>
#include <thread>
#include <vector>

#include "sim/engine_config.hh"
#include "sim/fiber.hh"
#include "sim/ticks.hh"
#include "sim/workqueue.hh"

namespace cables {

namespace prof {
class Profiler;
enum class Cat : int;
} // namespace prof

namespace sim {

class Tracer;

/** Identifier of a simulated thread; dense, never reused within a run. */
using ThreadId = int32_t;

constexpr ThreadId InvalidThreadId = -1;

/**
 * Why a thread is blocked. An enum (plus a static label table) rather
 * than a caller-owned string so the reason can never dangle across
 * fiber teardown in abort paths.
 */
enum class BlockReason : uint8_t {
    None,       ///< not blocked
    SvmLock,    ///< waiting for an SVM lock handover
    SvmBarrier, ///< waiting inside an SVM barrier
    CondWait,   ///< pthread-style condition wait
    AttachWait, ///< waiting for an asynchronous node attach
    Join,       ///< pthread_join on an unfinished thread
    Other,      ///< anything else (tests, ad-hoc waits)
};

/** Static diagnostic label for @p r (never dangles). */
const char *blockReasonLabel(BlockReason r);

/**
 * One simulated thread: a fiber plus a virtual clock and run state.
 */
class SimThread
{
  public:
    enum class State { Runnable, Blocked, Finished };

    /** Which host thread currently owns the fiber (parallel mode). */
    enum class HostPhase {
        OnScheduler, ///< running (or runnable) on the scheduler thread
        Migrated,    ///< compute segment executing on a worker thread
    };

    SimThread(ThreadId id, std::string name, std::function<void()> fn,
              Tick start_at)
        : id(id), name(std::move(name)), now(start_at),
          fiber(std::move(fn))
    {}

    const ThreadId id;
    const std::string name;

    /** Local virtual clock (ns). */
    Tick now;

    State state = State::Runnable;

    /** Why the thread is blocked (diagnostics only). */
    BlockReason blockReason = BlockReason::None;

    /** Nesting depth of runtime operations (see Engine::opBegin). */
    int opDepth = 0;

    HostPhase hostPhase = HostPhase::OnScheduler;

    /** Cluster node the thread runs on (worker mailbox affinity). */
    int node = 0;

    /**
     * Opaque per-thread slot for the runtime layer (stable across the
     * thread's life; readable from worker threads, unlike containers
     * the scheduler may reallocate concurrently).
     */
    void *user = nullptr;

    Fiber fiber;
};

/**
 * Observer/driver of scheduling freedom. The engine's earliest-first
 * discipline fixes *when* every thread runs; the only freedom left is
 * the order among entities tied at the minimum virtual time. A
 * controller is consulted exactly at those points:
 *
 *  - pickTied(): several runnable threads share the minimum clock; the
 *    candidates arrive in the order the serial engine would use
 *    (ascending ready-queue seq — index 0 is the default pick).
 *  - preemptTied(): a thread calling sync() is *exactly tied* with the
 *    earliest other entity. Returning true forces a yield (the serial
 *    engine keeps running, i.e. false). Preempting a strictly-earliest
 *    thread is never offered: it would be re-picked immediately.
 *
 * Both hooks perturb only tie order, so every explored schedule is a
 * valid earliest-first execution. With a controller installed the
 * engine never migrates compute segments to workers (opEnd), so the
 * decision stream is identical in serial and parallel engine mode.
 * Thread-vs-event ties keep the fixed thread-wins rule (events model
 * in-flight messages whose delivery order is not a scheduler choice).
 */
class ScheduleController
{
  public:
    virtual ~ScheduleController() = default;

    /**
     * Choose among @p cands (>= 2 runnable threads tied at the minimum
     * clock, in serial pick order). Return an index into @p cands.
     */
    virtual size_t pickTied(const std::vector<ThreadId> &cands) = 0;

    /**
     * @p tid called sync() while exactly tied with the earliest other
     * entity. Return true to force a yield (schedule perturbation),
     * false to keep running (serial behaviour).
     */
    virtual bool preemptTied(ThreadId tid) = 0;
};

/**
 * The simulation engine. Owns all threads and the event queue.
 *
 * Events are one-shot callbacks executed on the scheduler stack at a
 * given tick; they model remote handler invocations and timers. Events
 * may spawn/wake threads and schedule further events but must not block.
 */
class Engine
{
  public:
    explicit Engine(const EngineConfig &cfg = EngineConfig());
    ~Engine();

    Engine(const Engine &) = delete;
    Engine &operator=(const Engine &) = delete;

    const EngineConfig &config() const { return cfg_; }

    /** True when this engine runs with a worker pool. */
    bool parallel() const { return cfg_.mode == EngineMode::Parallel; }

    /**
     * Set the migration lookahead (ticks); used by the runtime to
     * install the auto default (minimum network latency) after the
     * network model exists. Explicit EngineConfig::lookahead wins.
     */
    void setLookahead(Tick l);

    /**
     * Create a new simulated thread.
     *
     * @param name diagnostic name.
     * @param fn entry function (runs on the thread's fiber).
     * @param start_at initial clock value of the new thread.
     * @return the new thread's id.
     */
    ThreadId spawn(std::string name, std::function<void()> fn,
                   Tick start_at);

    /** Schedule a one-shot event at tick @p when. */
    void schedule(Tick when, std::function<void()> fn);

    /**
     * Schedule a *weak* one-shot event at tick @p when: an observer
     * hook (the telemetry sampler) that fires at its tick like any
     * event but never keeps the simulation alive — weak events left
     * over when all threads and regular events are done are discarded
     * without running, and they count in neither eventsRun() nor
     * maxTime(). They do participate in the earliest-first ordering,
     * so a weak event observes exact virtual-time state.
     */
    void scheduleWeak(Tick when, std::function<void()> fn);

    /**
     * Run the simulation until no runnable threads and no events remain.
     * Blocked threads left over at completion indicate a deadlock and
     * trigger a fatal error unless @p allow_blocked is set.
     */
    void run(bool allow_blocked = false);

    /**
     * Abort the simulation: run() returns once the current fiber
     * yields, and no further thread or event is scheduled. Unfinished
     * fibers are never resumed (their stacks are reclaimed with the
     * engine, but objects on them are not destroyed — acceptable for a
     * failed run that is about to be torn down).
     */
    void stop() { stopped = true; }

    /** True once stop() was called. */
    bool isStopped() const { return stopped; }

    /// @name Fiber-side API (callable only from inside a simulated thread)
    /// @{

    /**
     * The currently executing simulated thread (null on the scheduler
     * stack). Thread-local: correct on workers too.
     */
    SimThread *current();

    /** Current thread's clock. */
    Tick now() const;

    /** Advance the current thread's clock by @p dt without yielding. */
    void advance(Tick dt);

    /**
     * Ensure the current thread holds the globally minimum clock; yields
     * to earlier threads/events if not. Must be called before touching
     * any shared simulation state.
     */
    void sync();

    /**
     * Block the current thread until another thread or an event wakes it
     * via wake(). @p why is kept for deadlock diagnostics.
     */
    void block(BlockReason why);

    /**
     * Enter a runtime operation (nestable). At the outermost level this
     * parks the fiber back onto the scheduler if its compute segment
     * was migrated to a worker, then performs the uniform entry sync()
     * — identical in serial and parallel mode, so both modes see the
     * same yield points and the same ready-queue sequence numbers.
     * Prefer the GuestOp RAII wrapper.
     * @return the entered thread, to be passed back to opEnd().
     */
    SimThread *opBegin();

    /**
     * Leave a runtime operation on @p t (the thread opBegin()
     * returned — not re-read from thread-local state, because an
     * abandoned fiber unwinds on the scheduler's stack after the run).
     * At the outermost level in parallel mode, if the thread is
     * strictly ahead of all other pending work by at least the
     * lookahead window (and a worker slot is free), the fiber is handed
     * to a worker to execute the following compute segment
     * concurrently; a ready ticket at (now, next seq) marks where the
     * serial engine would resume it.
     */
    void opEnd(SimThread *t, bool allow_migrate = true);

    /**
     * Wait until no guest code is executing on a worker. Must be called
     * (on the scheduler) before protocol code *reads* guest memory
     * contents (twin copies, diff scans): in-flight compute segments of
     * race-free guests may still be writing unrelated words of the same
     * page. No simulated time passes. No-op in serial mode.
     */
    void contentFence();

    /// @}

    /**
     * Make a blocked thread runnable. Its clock becomes
     * max(own clock, @p at). Callable from fibers and events.
     */
    void wake(ThreadId tid, Tick at);

    /** Look up a thread (alive for the whole run). */
    SimThread &thread(ThreadId tid);

    /** True if the thread has finished executing its entry function. */
    bool finished(ThreadId tid);

    /** Number of threads ever spawned. */
    size_t threadCount() const { return threads.size(); }

    /**
     * Install (or remove, with nullptr) a structured tracer. Scheduling
     * events (spawn / block / wake / finish) are recorded from here on;
     * the engine does not own the tracer.
     */
    void setTracer(Tracer *t) { tracer_ = t; }
    Tracer *tracer() const { return tracer_; }

    /**
     * Install (or remove, with nullptr) a time-breakdown profiler.
     * Thread lifecycle and block/wake intervals are recorded from here
     * on; the engine does not own the profiler. Pure observer: installing
     * one never changes simulated time.
     */
    void setProfiler(prof::Profiler *p) { profiler_ = p; }
    prof::Profiler *profiler() const { return profiler_; }

    /**
     * Install (or remove, with nullptr) a schedule controller. The
     * engine does not own it. Unlike the tracer/profiler this is not a
     * pure observer — it perturbs tie-breaking — but with a controller
     * that always answers "default" (pick index 0, never preempt) the
     * run is bit-identical to an uncontrolled one.
     */
    void setScheduleController(ScheduleController *c) { controller_ = c; }
    ScheduleController *scheduleController() const { return controller_; }

    /**
     * Push category @p c on the current thread's attribution stack.
     * Returns true iff a profiler is installed and a fiber is running
     * (i.e. a matching profLeave() is owed). Prefer ProfScope.
     */
    bool profEnter(prof::Cat c);

    /** Pop the current thread's attribution stack. */
    void profLeave();

    /** Total fiber context switches performed (host-perf metric). */
    uint64_t switches() const { return switchCount; }

    /** Total events executed. */
    uint64_t eventsRun() const { return eventCount; }

    /**
     * Compute segments handed to worker threads. A host-side (wall
     * clock domain) diagnostic: the count depends on host timing and is
     * NOT deterministic, so it never enters the metrics registry.
     */
    uint64_t migrations() const { return migrationCount_; }

    /** Largest clock reached by any thread or event (the makespan). */
    Tick maxTime() const { return maxObservedTime; }

  private:
    struct ReadyEntry
    {
        Tick when;
        uint64_t seq;
        ThreadId tid;
        bool operator>(const ReadyEntry &o) const
        {
            return when != o.when ? when > o.when : seq > o.seq;
        }
    };

    struct Event
    {
        Tick when;
        uint64_t seq;
        std::function<void()> fn;
        bool weak = false;
    };

    struct EventOrder
    {
        bool operator()(const Event &a, const Event &b) const
        {
            return a.when != b.when ? a.when > b.when : a.seq > b.seq;
        }
    };

    /** Earliest time of any runnable thread other than @p self or event. */
    Tick earliestOther(const SimThread *self);

    /** Push a runnable thread onto the ready queue. */
    void makeReady(SimThread &t);

    /** Pop the next valid ready entry; null if none. */
    SimThread *popReady();

    /** Start the worker pool (parallel mode; called by run()). */
    void startWorkers();

    /** Close mailboxes and join all workers (idempotent). */
    void stopWorkers();

    /** Main loop of worker @p idx: resume fibers, report parks. */
    void workerLoop(int idx);

    /**
     * Absorb park notifications from workers: mark fibers back on the
     * scheduler and decrement the in-flight count. @p wait blocks for
     * at least one notification (requires inFlight_ > 0).
     */
    void drainParked(bool wait);

    std::vector<std::unique_ptr<SimThread>> threads;
    std::priority_queue<ReadyEntry, std::vector<ReadyEntry>,
                        std::greater<ReadyEntry>> ready;
    std::priority_queue<Event, std::vector<Event>, EventOrder> events;

    /**
     * Weak events live in their own queue so pending observer ticks are
     * invisible to earliestOther(): a sampler must never make sync()
     * yield (or block a migration) that the unobserved run would not
     * perform — that requeue changes tie outcomes and thus the
     * schedule. The run loop fires them at their exact tick whenever
     * the scheduler is between strong steps.
     */
    std::priority_queue<Event, std::vector<Event>, EventOrder>
        weakEvents_;
    uint64_t weakSeq_ = 0;

    Tracer *tracer_ = nullptr;
    prof::Profiler *profiler_ = nullptr;
    ScheduleController *controller_ = nullptr;
    uint64_t seqCounter = 0;
    uint64_t switchCount = 0;
    uint64_t eventCount = 0;
    Tick maxObservedTime = 0;
    bool running = false;
    bool stopped = false;

    // Parallel mode.
    EngineConfig cfg_;
    Tick lookahead_ = 0;
    bool parallelActive_ = false;          ///< worker pool running
    int workerCount_ = 0;
    int inFlight_ = 0;                     ///< fibers out on workers
    uint64_t migrationCount_ = 0;
    SimThread *migratePending_ = nullptr;  ///< hand-off set by opEnd()
    std::vector<std::unique_ptr<WorkQueue<SimThread *>>> mailboxes_;
    WorkQueue<ThreadId> inbox_;            ///< workers -> scheduler
    std::vector<std::thread> workers_;
};

/**
 * RAII runtime-operation bracket: opBegin() on construction, opEnd()
 * on destruction. Every public Runtime entry point that touches shared
 * simulation state wraps itself in one of these; nesting is fine (only
 * the outermost bracket acts). Pass allow_migrate = false for
 * operations whose continuation must stay on the scheduler (thread
 * finish/teardown paths).
 */
class GuestOp
{
  public:
    explicit GuestOp(Engine &engine, bool allow_migrate = true)
        : engine_(engine), thread_(engine.opBegin()),
          allowMigrate_(allow_migrate)
    {}

    ~GuestOp() { engine_.opEnd(thread_, allowMigrate_); }

    GuestOp(const GuestOp &) = delete;
    GuestOp &operator=(const GuestOp &) = delete;

  private:
    Engine &engine_;
    SimThread *thread_;
    bool allowMigrate_;
};

/**
 * RAII category scope: pushes @p c on construction when a profiler is
 * installed and a fiber is running, pops on destruction. Exception-safe
 * (cancellation unwinds through instrumented sites) and free when no
 * profiler is installed.
 */
class ProfScope
{
  public:
    ProfScope(Engine &engine, prof::Cat c)
        : engine_(engine), armed_(engine.profEnter(c))
    {}

    ~ProfScope()
    {
        if (armed_)
            engine_.profLeave();
    }

    ProfScope(const ProfScope &) = delete;
    ProfScope &operator=(const ProfScope &) = delete;

  private:
    Engine &engine_;
    bool armed_;
};

/**
 * A processor modelled as an occupancy resource. Compute blocks run when
 * both the thread and the processor are free; multiple threads bound to
 * one processor serialize, approximating local OS timeslicing at
 * @ref quantum granularity.
 */
class Processor
{
  public:
    /** Timeslice used when several threads share the processor. */
    static constexpr Tick quantum = 1 * MS;

    /**
     * Charge @p len of computation to the current thread, honouring the
     * processor's occupancy. Slices longer than the quantum yield between
     * slices so co-located threads interleave fairly.
     */
    void compute(Engine &engine, Tick len);

    /** Next tick at which the processor is free. */
    Tick nextFree() const { return nextFree_; }

    /** Reserve the processor through tick @p t (handler execution). */
    void occupyUntil(Tick t) { nextFree_ = std::max(nextFree_, t); }

  private:
    Tick nextFree_ = 0;
};

} // namespace sim
} // namespace cables

#endif // CABLES_SIM_ENGINE_HH
