/**
 * @file
 * The discrete-event simulation engine.
 *
 * Simulated threads are fibers with private virtual clocks. The engine
 * maintains the invariant that the fiber currently executing holds the
 * globally minimum clock among all runnable threads and pending events,
 * *at every visible operation*. Pure local computation merely advances
 * the local clock; before any operation that observes or mutates shared
 * simulation state (messages, locks, page tables) the caller invokes
 * sync(), which yields until the thread is earliest again.
 *
 * This "earliest-first" discipline gives deterministic, repeatable
 * parallel-time simulation on a single host thread.
 */

#ifndef CABLES_SIM_ENGINE_HH
#define CABLES_SIM_ENGINE_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <string>
#include <vector>

#include "sim/fiber.hh"
#include "sim/ticks.hh"

namespace cables {

namespace prof {
class Profiler;
enum class Cat : int;
} // namespace prof

namespace sim {

class Tracer;

/** Identifier of a simulated thread; dense, never reused within a run. */
using ThreadId = int32_t;

constexpr ThreadId InvalidThreadId = -1;

/**
 * One simulated thread: a fiber plus a virtual clock and run state.
 */
class SimThread
{
  public:
    enum class State { Runnable, Blocked, Finished };

    SimThread(ThreadId id, std::string name, std::function<void()> fn,
              Tick start_at)
        : id(id), name(std::move(name)), now(start_at),
          fiber(std::move(fn))
    {}

    const ThreadId id;
    const std::string name;

    /** Local virtual clock (ns). */
    Tick now;

    State state = State::Runnable;

    /** Why the thread is blocked (diagnostics only). */
    const char *blockReason = "";

    Fiber fiber;
};

/**
 * The simulation engine. Owns all threads and the event queue.
 *
 * Events are one-shot callbacks executed on the scheduler stack at a
 * given tick; they model remote handler invocations and timers. Events
 * may spawn/wake threads and schedule further events but must not block.
 */
class Engine
{
  public:
    Engine();
    ~Engine();

    Engine(const Engine &) = delete;
    Engine &operator=(const Engine &) = delete;

    /**
     * Create a new simulated thread.
     *
     * @param name diagnostic name.
     * @param fn entry function (runs on the thread's fiber).
     * @param start_at initial clock value of the new thread.
     * @return the new thread's id.
     */
    ThreadId spawn(std::string name, std::function<void()> fn,
                   Tick start_at);

    /** Schedule a one-shot event at tick @p when. */
    void schedule(Tick when, std::function<void()> fn);

    /**
     * Run the simulation until no runnable threads and no events remain.
     * Blocked threads left over at completion indicate a deadlock and
     * trigger a fatal error unless @p allow_blocked is set.
     */
    void run(bool allow_blocked = false);

    /**
     * Abort the simulation: run() returns once the current fiber
     * yields, and no further thread or event is scheduled. Unfinished
     * fibers are never resumed (their stacks are reclaimed with the
     * engine, but objects on them are not destroyed — acceptable for a
     * failed run that is about to be torn down).
     */
    void stop() { stopped = true; }

    /** True once stop() was called. */
    bool isStopped() const { return stopped; }

    /// @name Fiber-side API (callable only from inside a simulated thread)
    /// @{

    /** The currently executing simulated thread (null on the scheduler). */
    SimThread *current() { return currentThread; }

    /** Current thread's clock. */
    Tick now() const;

    /** Advance the current thread's clock by @p dt without yielding. */
    void advance(Tick dt);

    /**
     * Ensure the current thread holds the globally minimum clock; yields
     * to earlier threads/events if not. Must be called before touching
     * any shared simulation state.
     */
    void sync();

    /**
     * Block the current thread until another thread or an event wakes it
     * via wake(). @p why is kept for deadlock diagnostics.
     */
    void block(const char *why);

    /// @}

    /**
     * Make a blocked thread runnable. Its clock becomes
     * max(own clock, @p at). Callable from fibers and events.
     */
    void wake(ThreadId tid, Tick at);

    /** Look up a thread (alive for the whole run). */
    SimThread &thread(ThreadId tid);

    /** True if the thread has finished executing its entry function. */
    bool finished(ThreadId tid);

    /** Number of threads ever spawned. */
    size_t threadCount() const { return threads.size(); }

    /**
     * Install (or remove, with nullptr) a structured tracer. Scheduling
     * events (spawn / block / wake / finish) are recorded from here on;
     * the engine does not own the tracer.
     */
    void setTracer(Tracer *t) { tracer_ = t; }
    Tracer *tracer() const { return tracer_; }

    /**
     * Install (or remove, with nullptr) a time-breakdown profiler.
     * Thread lifecycle and block/wake intervals are recorded from here
     * on; the engine does not own the profiler. Pure observer: installing
     * one never changes simulated time.
     */
    void setProfiler(prof::Profiler *p) { profiler_ = p; }
    prof::Profiler *profiler() const { return profiler_; }

    /**
     * Push category @p c on the current thread's attribution stack.
     * Returns true iff a profiler is installed and a fiber is running
     * (i.e. a matching profLeave() is owed). Prefer ProfScope.
     */
    bool profEnter(prof::Cat c);

    /** Pop the current thread's attribution stack. */
    void profLeave();

    /** Total fiber context switches performed (host-perf metric). */
    uint64_t switches() const { return switchCount; }

    /** Total events executed. */
    uint64_t eventsRun() const { return eventCount; }

    /** Largest clock reached by any thread or event (the makespan). */
    Tick maxTime() const { return maxObservedTime; }

  private:
    struct ReadyEntry
    {
        Tick when;
        uint64_t seq;
        ThreadId tid;
        bool operator>(const ReadyEntry &o) const
        {
            return when != o.when ? when > o.when : seq > o.seq;
        }
    };

    struct Event
    {
        Tick when;
        uint64_t seq;
        std::function<void()> fn;
    };

    struct EventOrder
    {
        bool operator()(const Event &a, const Event &b) const
        {
            return a.when != b.when ? a.when > b.when : a.seq > b.seq;
        }
    };

    /** Earliest time of any runnable thread other than @p self or event. */
    Tick earliestOther(const SimThread *self);

    /** Push a runnable thread onto the ready queue. */
    void makeReady(SimThread &t);

    /** Pop the next valid ready entry; null if none. */
    SimThread *popReady();

    std::vector<std::unique_ptr<SimThread>> threads;
    std::priority_queue<ReadyEntry, std::vector<ReadyEntry>,
                        std::greater<ReadyEntry>> ready;
    std::priority_queue<Event, std::vector<Event>, EventOrder> events;

    SimThread *currentThread = nullptr;
    Tracer *tracer_ = nullptr;
    prof::Profiler *profiler_ = nullptr;
    uint64_t seqCounter = 0;
    uint64_t switchCount = 0;
    uint64_t eventCount = 0;
    Tick maxObservedTime = 0;
    bool running = false;
    bool stopped = false;
};

/**
 * RAII category scope: pushes @p c on construction when a profiler is
 * installed and a fiber is running, pops on destruction. Exception-safe
 * (cancellation unwinds through instrumented sites) and free when no
 * profiler is installed.
 */
class ProfScope
{
  public:
    ProfScope(Engine &engine, prof::Cat c)
        : engine_(engine), armed_(engine.profEnter(c))
    {}

    ~ProfScope()
    {
        if (armed_)
            engine_.profLeave();
    }

    ProfScope(const ProfScope &) = delete;
    ProfScope &operator=(const ProfScope &) = delete;

  private:
    Engine &engine_;
    bool armed_;
};

/**
 * A processor modelled as an occupancy resource. Compute blocks run when
 * both the thread and the processor are free; multiple threads bound to
 * one processor serialize, approximating local OS timeslicing at
 * @ref quantum granularity.
 */
class Processor
{
  public:
    /** Timeslice used when several threads share the processor. */
    static constexpr Tick quantum = 1 * MS;

    /**
     * Charge @p len of computation to the current thread, honouring the
     * processor's occupancy. Slices longer than the quantum yield between
     * slices so co-located threads interleave fairly.
     */
    void compute(Engine &engine, Tick len);

    /** Next tick at which the processor is free. */
    Tick nextFree() const { return nextFree_; }

    /** Reserve the processor through tick @p t (handler execution). */
    void occupyUntil(Tick t) { nextFree_ = std::max(nextFree_, t); }

  private:
    Tick nextFree_ = 0;
};

} // namespace sim
} // namespace cables

#endif // CABLES_SIM_ENGINE_HH
