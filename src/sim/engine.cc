#include "sim/engine.hh"

#include <algorithm>
#include <cstdio>

#include "prof/profiler.hh"
#include "sim/trace.hh"
#include "util/logging.hh"

namespace cables {
namespace sim {

Engine::Engine() = default;
Engine::~Engine() = default;

ThreadId
Engine::spawn(std::string name, std::function<void()> fn, Tick start_at)
{
    ThreadId id = static_cast<ThreadId>(threads.size());
    auto *self = this;
    auto wrapped = [self, fn = std::move(fn)]() { fn(); };
    threads.push_back(std::make_unique<SimThread>(
        id, std::move(name), std::move(wrapped), start_at));
    makeReady(*threads.back());
    if (tracer_) {
        tracer_->nameThread(0, id, threads.back()->name);
        tracer_->instant(start_at, 0, id, "sched", "spawn");
    }
    if (profiler_) {
        profiler_->threadStarted(id, start_at);
        profiler_->spawnEdge(currentThread ? currentThread->id
                                           : InvalidThreadId,
                             id, start_at);
    }
    return id;
}

void
Engine::schedule(Tick when, std::function<void()> fn)
{
    panic_if(when < 0, "scheduling event in negative time");
    events.push(Event{when, seqCounter++, std::move(fn)});
}

SimThread &
Engine::thread(ThreadId tid)
{
    panic_if(tid < 0 || static_cast<size_t>(tid) >= threads.size(),
             "bad thread id {}", tid);
    return *threads[tid];
}

bool
Engine::finished(ThreadId tid)
{
    return thread(tid).state == SimThread::State::Finished;
}

Tick
Engine::now() const
{
    panic_if(!currentThread, "now() called outside a simulated thread");
    return currentThread->now;
}

void
Engine::advance(Tick dt)
{
    panic_if(!currentThread, "advance() outside a simulated thread");
    panic_if(dt < 0, "advancing by negative time ({}) in thread '{}'",
             dt, currentThread->name);
    currentThread->now += dt;
}

void
Engine::makeReady(SimThread &t)
{
    t.state = SimThread::State::Runnable;
    ready.push(ReadyEntry{t.now, seqCounter++, t.id});
}

SimThread *
Engine::popReady()
{
    while (!ready.empty()) {
        ReadyEntry e = ready.top();
        SimThread &t = *threads[e.tid];
        // Skip stale entries (thread re-queued at a different time, or
        // no longer runnable).
        if (t.state != SimThread::State::Runnable || t.now != e.when) {
            ready.pop();
            continue;
        }
        return &t;
    }
    return nullptr;
}

Tick
Engine::earliestOther(const SimThread *self)
{
    // The currently running thread is never queued (run() pops it before
    // switching in), so a plain peek over both queues suffices.
    Tick best = events.empty() ? MaxTick : events.top().when;
    if (SimThread *t = popReady())
        best = std::min(best, t->now);
    return best;
}

void
Engine::sync()
{
    panic_if(!currentThread, "sync() outside a simulated thread");
    SimThread *t = currentThread;
    // Fast path: still the earliest entity — keep running.
    if (t->now <= earliestOther(t))
        return;
    // Yield: requeue at our (advanced) clock and return to the scheduler.
    makeReady(*t);
    ++switchCount;
    t->fiber.switchBack();
}

void
Engine::block(const char *why)
{
    panic_if(!currentThread, "block() outside a simulated thread");
    SimThread *t = currentThread;
    t->state = SimThread::State::Blocked;
    t->blockReason = why;
    if (tracer_) {
        util::Json args = util::Json::object();
        args.set("reason", why);
        tracer_->instant(t->now, 0, t->id, "sched", "block",
                         std::move(args));
    }
    if (profiler_)
        profiler_->blockBegin(t->id, why, t->now);
    ++switchCount;
    t->fiber.switchBack();
    panic_if(t->state != SimThread::State::Runnable,
             "blocked thread resumed without wake()");
}

void
Engine::wake(ThreadId tid, Tick at)
{
    SimThread &t = thread(tid);
    panic_if(t.state != SimThread::State::Blocked,
             "waking thread '{}' which is not blocked", t.name);
    t.now = std::max(t.now, at);
    t.blockReason = "";
    makeReady(t);
    if (tracer_)
        tracer_->instant(t.now, 0, t.id, "sched", "wake");
    if (profiler_) {
        profiler_->blockEnd(tid, currentThread ? currentThread->id
                                               : InvalidThreadId,
                            t.now);
    }
}

bool
Engine::profEnter(prof::Cat c)
{
    if (!profiler_ || !currentThread)
        return false;
    profiler_->enter(currentThread->id, c, currentThread->now);
    return true;
}

void
Engine::profLeave()
{
    panic_if(!profiler_ || !currentThread,
             "profLeave() without a matching profEnter()");
    profiler_->leave(currentThread->id, currentThread->now);
}

void
Engine::run(bool allow_blocked)
{
    panic_if(running, "Engine::run is not reentrant");
    running = true;

    while (!stopped) {
        SimThread *t = popReady();
        bool have_event = !events.empty();

        if (!t && !have_event)
            break;

        Tick tt = t ? t->now : MaxTick;
        Tick et = have_event ? events.top().when : MaxTick;

        if (et < tt || (et == tt && !t)) {
            // Execute the earliest event on the scheduler stack.
            Event ev = events.top();
            events.pop();
            maxObservedTime = std::max(maxObservedTime, ev.when);
            ++eventCount;
            ev.fn();
            continue;
        }

        // Run the earliest thread until it yields, blocks or finishes.
        ready.pop();
        currentThread = t;
        ++switchCount;
        t->fiber.switchTo();
        currentThread = nullptr;
        maxObservedTime = std::max(maxObservedTime, t->now);
        if (t->fiber.finished()) {
            t->state = SimThread::State::Finished;
            if (tracer_)
                tracer_->instant(t->now, 0, t->id, "sched", "finish");
            if (profiler_)
                profiler_->threadFinished(t->id, t->now);
        }
    }

    if (!allow_blocked && !stopped) {
        for (const auto &t : threads) {
            if (t->state == SimThread::State::Blocked) {
                fatal("deadlock: thread '{}' still blocked on '{}' at end "
                      "of simulation", t->name, t->blockReason);
            }
        }
    }
    running = false;
}

void
Processor::compute(Engine &engine, Tick len)
{
    panic_if(len < 0, "negative compute length");
    while (len > 0) {
        engine.sync();
        Tick slice = std::min(len, quantum);
        Tick start = std::max(engine.now(), nextFree_);
        Tick end = start + slice;
        engine.advance(end - engine.now());
        nextFree_ = end;
        len -= slice;
    }
}

} // namespace sim
} // namespace cables
