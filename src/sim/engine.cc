#include "sim/engine.hh"

#include <algorithm>
#include <cstdio>
#include <exception>

#include "prof/profiler.hh"
#include "sim/trace.hh"
#include "util/logging.hh"

namespace cables {
namespace sim {

namespace {

/**
 * Host-thread-local view of "the simulated thread executing here".
 * The scheduler sets it around every fiber resume; workers set it
 * around migrated compute segments. Thread-local (not an Engine
 * member) so Engine::current() is correct on any host thread.
 */
thread_local SimThread *tlCurrentThread = nullptr;

/** True on worker host threads (inside workerLoop). */
thread_local bool tlOnWorker = false;

} // namespace

const char *
blockReasonLabel(BlockReason r)
{
    switch (r) {
      case BlockReason::None:
        return "";
      case BlockReason::SvmLock:
        return "svm-lock";
      case BlockReason::SvmBarrier:
        return "svm-barrier";
      case BlockReason::CondWait:
        return "cond-wait";
      case BlockReason::AttachWait:
        return "attach-wait";
      case BlockReason::Join:
        return "pthread-join";
      case BlockReason::Other:
        return "other";
    }
    return "?";
}

Engine::Engine(const EngineConfig &cfg)
    : cfg_(cfg)
{
    cfg_.validate();
    lookahead_ = cfg_.lookahead; // -1 = auto, resolved in startWorkers()
}

Engine::~Engine()
{
    // run() normally drains and joins; this covers early destruction
    // after a fatal error escaped from an event or guest operation.
    while (inFlight_ > 0)
        drainParked(true);
    stopWorkers();
}

void
Engine::setLookahead(Tick l)
{
    panic_if(l < 0, "negative lookahead");
    if (cfg_.lookahead < 0) // explicit configuration wins over auto
        lookahead_ = l;
}

ThreadId
Engine::spawn(std::string name, std::function<void()> fn, Tick start_at)
{
    panic_if(tlOnWorker, "spawn() on a worker thread (missing GuestOp?)");
    ThreadId id = static_cast<ThreadId>(threads.size());
    auto *self = this;
    auto wrapped = [self, fn = std::move(fn)]() { fn(); };
    threads.push_back(std::make_unique<SimThread>(
        id, std::move(name), std::move(wrapped), start_at));
    makeReady(*threads.back());
    if (tracer_) {
        tracer_->nameThread(0, id, threads.back()->name);
        tracer_->instant(start_at, 0, id, "sched", "spawn");
    }
    if (profiler_) {
        profiler_->threadStarted(id, start_at);
        profiler_->spawnEdge(tlCurrentThread ? tlCurrentThread->id
                                             : InvalidThreadId,
                             id, start_at);
    }
    return id;
}

void
Engine::schedule(Tick when, std::function<void()> fn)
{
    panic_if(tlOnWorker,
             "schedule() on a worker thread (missing GuestOp?)");
    panic_if(when < 0, "scheduling event in negative time");
    events.push(Event{when, seqCounter++, std::move(fn)});
}

void
Engine::scheduleWeak(Tick when, std::function<void()> fn)
{
    panic_if(tlOnWorker,
             "scheduleWeak() on a worker thread (missing GuestOp?)");
    panic_if(when < 0, "scheduling event in negative time");
    weakEvents_.push(Event{when, weakSeq_++, std::move(fn), true});
}

SimThread &
Engine::thread(ThreadId tid)
{
    panic_if(tid < 0 || static_cast<size_t>(tid) >= threads.size(),
             "bad thread id {}", tid);
    return *threads[tid];
}

bool
Engine::finished(ThreadId tid)
{
    return thread(tid).state == SimThread::State::Finished;
}

SimThread *
Engine::current()
{
    return tlCurrentThread;
}

Tick
Engine::now() const
{
    panic_if(!tlCurrentThread, "now() called outside a simulated thread");
    return tlCurrentThread->now;
}

void
Engine::advance(Tick dt)
{
    panic_if(!tlCurrentThread, "advance() outside a simulated thread");
    panic_if(tlOnWorker,
             "advance() on a worker thread (missing GuestOp bracket?)");
    panic_if(dt < 0, "advancing by negative time ({}) in thread '{}'",
             dt, tlCurrentThread->name);
    tlCurrentThread->now += dt;
}

void
Engine::makeReady(SimThread &t)
{
    t.state = SimThread::State::Runnable;
    ready.push(ReadyEntry{t.now, seqCounter++, t.id});
}

SimThread *
Engine::popReady()
{
    while (!ready.empty()) {
        ReadyEntry e = ready.top();
        SimThread &t = *threads[e.tid];
        // Skip stale entries (thread re-queued at a different time, or
        // no longer runnable).
        if (t.state != SimThread::State::Runnable || t.now != e.when) {
            ready.pop();
            continue;
        }
        return &t;
    }
    return nullptr;
}

Tick
Engine::earliestOther(const SimThread *self)
{
    // The currently running thread is never queued (run() pops it before
    // switching in), so a plain peek over both queues suffices. A
    // migrated thread's pre-allocated ticket *is* in the queue: its next
    // operation is pending future work other threads must respect.
    Tick best = events.empty() ? MaxTick : events.top().when;
    if (SimThread *t = popReady())
        best = std::min(best, t->now);
    return best;
}

void
Engine::sync()
{
    panic_if(!tlCurrentThread, "sync() outside a simulated thread");
    panic_if(tlOnWorker,
             "sync() on a worker thread (missing GuestOp bracket?)");
    SimThread *t = tlCurrentThread;
    Tick eo = earliestOther(t);
    // Fast path: strictly earliest — keep running.
    if (t->now < eo)
        return;
    // Exact tie: the serial engine keeps running (the running thread
    // wins ties against work it has not yielded to), but a schedule
    // controller may force a preemption here — the only point where
    // yielding is still a valid earliest-first schedule.
    if (t->now == eo && (!controller_ || !controller_->preemptTied(t->id)))
        return;
    // Yield: requeue at our (advanced) clock and return to the scheduler.
    makeReady(*t);
    ++switchCount;
    t->fiber.switchBack();
}

void
Engine::block(BlockReason why)
{
    panic_if(!tlCurrentThread, "block() outside a simulated thread");
    panic_if(tlOnWorker,
             "block() on a worker thread (missing GuestOp bracket?)");
    SimThread *t = tlCurrentThread;
    t->state = SimThread::State::Blocked;
    t->blockReason = why;
    if (tracer_) {
        util::Json args = util::Json::object();
        args.set("reason", blockReasonLabel(why));
        tracer_->instant(t->now, 0, t->id, "sched", "block",
                         std::move(args));
    }
    if (profiler_)
        profiler_->blockBegin(t->id, blockReasonLabel(why), t->now);
    ++switchCount;
    t->fiber.switchBack();
    panic_if(t->state != SimThread::State::Runnable,
             "blocked thread resumed without wake()");
}

void
Engine::wake(ThreadId tid, Tick at)
{
    panic_if(tlOnWorker, "wake() on a worker thread (missing GuestOp?)");
    SimThread &t = thread(tid);
    panic_if(t.state != SimThread::State::Blocked,
             "waking thread '{}' which is not blocked", t.name);
    t.now = std::max(t.now, at);
    t.blockReason = BlockReason::None;
    makeReady(t);
    if (tracer_)
        tracer_->instant(t.now, 0, t.id, "sched", "wake");
    if (profiler_) {
        profiler_->blockEnd(tid, tlCurrentThread ? tlCurrentThread->id
                                                 : InvalidThreadId,
                            t.now);
    }
}

SimThread *
Engine::opBegin()
{
    SimThread *t = tlCurrentThread;
    panic_if(!t, "runtime operation outside a simulated thread");
    if (t->opDepth++ > 0)
        return t;
    if (tlOnWorker) {
        // The compute segment ran on a worker and has now re-entered
        // the runtime: park the fiber (control returns to workerLoop,
        // which notifies the scheduler; the scheduler resumes us from
        // the ready ticket pre-allocated by the migrating opEnd()).
        t->fiber.switchBack();
    }
    // Uniform entry sync — performed identically in serial and parallel
    // mode, so both modes yield at the same points with the same
    // sequence numbers (the migration ticket's slot; DESIGN.md §11).
    sync();
    return t;
}

void
Engine::opEnd(SimThread *t, bool allow_migrate)
{
    panic_if(!t || t->opDepth <= 0, "opEnd() without matching opBegin()");
    if (--t->opDepth > 0)
        return;
    if (!parallelActive_ || !allow_migrate || stopped)
        return;
    // Under a schedule controller, migrated tickets would create pick
    // points that do not exist serially; keep every fiber on the
    // scheduler so the decision stream is identical in both modes.
    if (controller_)
        return;
    if (inFlight_ >= workerCount_ || std::uncaught_exceptions() > 0)
        return;
    Tick eo = earliestOther(t);
    // Migrate only when *strictly* ahead of every other pending entity
    // by at least the lookahead window. Strictness keeps ties exact:
    // the ticket below can only tie with entries created after it, and
    // lower seq wins ties — matching serial mode, where the running
    // thread implicitly wins a tie against work it hasn't yielded to.
    if (eo >= t->now || t->now - eo < lookahead_)
        return;
    // Pre-allocate the ready ticket the next opBegin()'s sync would
    // have pushed in serial mode: nothing else can run between here and
    // there serially, so (when, seq) land in exactly the same slot.
    ready.push(ReadyEntry{t->now, seqCounter++, t->id});
    t->hostPhase = SimThread::HostPhase::Migrated;
    ++switchCount; // the yield serial mode would perform at that sync
    ++inFlight_;
    ++migrationCount_;
    migratePending_ = t;
    // Return to the scheduler, which completes the hand-off by mailing
    // the fiber to a worker *after* this switch has fully saved our
    // context (the worker must never resume a half-switched fiber).
    t->fiber.switchBack();
    // Resumed by the scheduler from the ticket; back in serial order.
}

void
Engine::contentFence()
{
    panic_if(tlOnWorker,
             "contentFence() on a worker thread (missing GuestOp?)");
    while (inFlight_ > 0)
        drainParked(true);
}

bool
Engine::profEnter(prof::Cat c)
{
    if (!profiler_ || !tlCurrentThread)
        return false;
    panic_if(tlOnWorker,
             "profEnter() on a worker thread (missing GuestOp bracket?)");
    profiler_->enter(tlCurrentThread->id, c, tlCurrentThread->now);
    return true;
}

void
Engine::profLeave()
{
    panic_if(!profiler_ || !tlCurrentThread,
             "profLeave() without a matching profEnter()");
    profiler_->leave(tlCurrentThread->id, tlCurrentThread->now);
}

void
Engine::startWorkers()
{
    if (cfg_.mode != EngineMode::Parallel)
        return;
    workerCount_ = cfg_.resolvedWorkers();
    if (lookahead_ < 0)
        lookahead_ = 0; // auto, but nobody installed a network latency
    mailboxes_.clear();
    for (int i = 0; i < workerCount_; ++i)
        mailboxes_.push_back(std::make_unique<WorkQueue<SimThread *>>());
    for (int i = 0; i < workerCount_; ++i)
        workers_.emplace_back([this, i] { workerLoop(i); });
    parallelActive_ = true;
}

void
Engine::stopWorkers()
{
    if (!parallelActive_)
        return;
    panic_if(inFlight_ > 0, "stopping workers with fibers in flight");
    for (auto &m : mailboxes_)
        m->close();
    for (auto &w : workers_)
        w.join();
    workers_.clear();
    mailboxes_.clear();
    parallelActive_ = false;
}

void
Engine::workerLoop(int idx)
{
    tlOnWorker = true;
    SimThread *t = nullptr;
    while (mailboxes_[idx]->waitPop(t)) {
        tlCurrentThread = t;
        t->fiber.switchTo();
        tlCurrentThread = nullptr;
        // The fiber parked (or finished); tell the scheduler. The
        // queue's lock is the release/acquire edge making everything
        // the segment wrote visible to the scheduler.
        inbox_.push(t->id);
    }
}

void
Engine::drainParked(bool wait)
{
    auto absorb = [&](ThreadId tid) {
        SimThread &t = *threads[tid];
        t.hostPhase = SimThread::HostPhase::OnScheduler;
        --inFlight_;
        if (t.fiber.finished()) {
            // The guest function returned while on the worker (bare
            // engine use; the full runtime always finishes threads on
            // the scheduler via a non-migratable operation).
            t.state = SimThread::State::Finished;
            if (tracer_)
                tracer_->instant(t.now, 0, t.id, "sched", "finish");
            if (profiler_)
                profiler_->threadFinished(t.id, t.now);
        }
    };

    ThreadId tid = InvalidThreadId;
    if (wait) {
        panic_if(inFlight_ <= 0, "waiting for parked fibers with none "
                 "in flight");
        bool ok = inbox_.waitPop(tid);
        panic_if(!ok, "scheduler inbox closed while fibers in flight");
        absorb(tid);
    }
    while (inbox_.tryPop(tid))
        absorb(tid);
}

void
Engine::run(bool allow_blocked)
{
    panic_if(running, "Engine::run is not reentrant");
    running = true;
    startWorkers();

    while (!stopped) {
        if (parallelActive_)
            drainParked(false);

        SimThread *t = popReady();
        bool have_event = !events.empty();

        if (!t && !have_event) {
            if (inFlight_ > 0) {
                // All remaining work is out on workers; wait for a
                // fiber to park (its ticket then becomes poppable).
                drainParked(true);
                continue;
            }
            // Leftover weak events (sampler ticks past the last real
            // work) are discarded without running: they never keep the
            // simulation alive or extend the makespan.
            break;
        }

        Tick tt = t ? t->now : MaxTick;
        Tick et = have_event ? events.top().when : MaxTick;

        // Fire due weak observer ticks first: they run at their exact
        // virtual time, before any same-tick strong step, but count in
        // neither eventsRun() nor the makespan — and, because their
        // queue is invisible to earliestOther(), they never alter the
        // schedule the unobserved run would take.
        if (!weakEvents_.empty() &&
            weakEvents_.top().when <= std::min(et, tt)) {
            Event ev = weakEvents_.top();
            weakEvents_.pop();
            ev.fn();
            continue;
        }

        if (et < tt || (et == tt && !t)) {
            // Execute the earliest event on the scheduler stack.
            Event ev = events.top();
            events.pop();
            maxObservedTime = std::max(maxObservedTime, ev.when);
            ++eventCount;
            ev.fn();
            continue;
        }

        if (t->hostPhase == SimThread::HostPhase::Migrated) {
            // The next simulated step belongs to a fiber whose compute
            // segment is still running on a worker; wait for it to
            // park before resuming it from its ticket.
            drainParked(true);
            continue;
        }

        // Run the earliest thread until it yields, blocks, migrates or
        // finishes.
        if (controller_) {
            // Collect every distinct runnable thread tied at the
            // minimum clock, in serial pick order (ascending seq), and
            // let the controller choose among them. The losers are
            // requeued in their original relative order with fresh
            // seqs; since *all* entries at this tick were collected,
            // relative order among them is fully controller-defined
            // and later arrivals still sort after them.
            std::vector<ThreadId> cands;
            while (!ready.empty()) {
                ReadyEntry e = ready.top();
                if (e.when != tt)
                    break;
                SimThread &c = *threads[e.tid];
                if (c.state != SimThread::State::Runnable ||
                    c.now != e.when) {
                    ready.pop(); // stale
                    continue;
                }
                if (c.hostPhase == SimThread::HostPhase::Migrated)
                    break; // impossible under a controller; bare-engine safety
                if (std::find(cands.begin(), cands.end(), e.tid) ==
                    cands.end())
                    cands.push_back(e.tid);
                ready.pop();
            }
            size_t pick =
                cands.size() > 1 ? controller_->pickTied(cands) : 0;
            panic_if(pick >= cands.size(),
                     "controller picked index {} of {} tied threads",
                     pick, cands.size());
            t = threads[cands[pick]].get();
            for (size_t i = 0; i < cands.size(); ++i) {
                if (i != pick)
                    ready.push(ReadyEntry{tt, seqCounter++, cands[i]});
            }
        } else {
            ready.pop();
        }
        tlCurrentThread = t;
        ++switchCount;
        t->fiber.switchTo();
        tlCurrentThread = nullptr;
        maxObservedTime = std::max(maxObservedTime, t->now);
        if (migratePending_) {
            // The fiber suspended itself in opEnd() for migration; now
            // that its context is fully saved, hand it to a worker.
            SimThread *m = migratePending_;
            migratePending_ = nullptr;
            mailboxes_[static_cast<size_t>(m->node) %
                       static_cast<size_t>(workerCount_)]->push(m);
            continue;
        }
        if (t->fiber.finished()) {
            t->state = SimThread::State::Finished;
            if (tracer_)
                tracer_->instant(t->now, 0, t->id, "sched", "finish");
            if (profiler_)
                profiler_->threadFinished(t->id, t->now);
        }
    }

    // Never return with guest code still running on a worker (stop()
    // and normal completion both drain), then quiesce the pool.
    while (inFlight_ > 0)
        drainParked(true);
    stopWorkers();

    if (!allow_blocked && !stopped) {
        for (const auto &t : threads) {
            if (t->state == SimThread::State::Blocked) {
                fatal("deadlock: thread '{}' still blocked on '{}' at end "
                      "of simulation", t->name,
                      blockReasonLabel(t->blockReason));
            }
        }
    }
    running = false;
}

void
Processor::compute(Engine &engine, Tick len)
{
    panic_if(len < 0, "negative compute length");
    while (len > 0) {
        engine.sync();
        Tick slice = std::min(len, quantum);
        Tick start = std::max(engine.now(), nextFree_);
        Tick end = start + slice;
        engine.advance(end - engine.now());
        nextFree_ = end;
        len -= slice;
    }
}

} // namespace sim
} // namespace cables
