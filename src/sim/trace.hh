/**
 * @file
 * Structured virtual-time tracing.
 *
 * A Tracer collects typed events stamped with *simulated* time: fiber
 * scheduling (spawn / block / wake / finish), SVM protocol activity
 * (faults, diff flushes, write-notice application, migrations),
 * CableS synchronization operations, and SAN messages. Components hold
 * an optional Tracer pointer and record only when one is installed, so
 * untraced runs pay a single branch per site.
 *
 * Export is Chrome trace-event JSON ("traceEvents" array), so any run
 * can be opened directly in Perfetto / chrome://tracing. Events are
 * sorted by virtual time on export; because the simulation is
 * deterministic, two runs with the same seed export byte-identical
 * traces.
 *
 * Convention: pid is the cluster node (0-based; scheduler-level events
 * that have no node use pid 0), tid is the simulated thread id, ts/dur
 * are microseconds of virtual time (Chrome's native unit).
 */

#ifndef CABLES_SIM_TRACE_HH
#define CABLES_SIM_TRACE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/ticks.hh"
#include "util/json.hh"

namespace cables {
namespace sim {

/** One recorded event (Chrome trace-event phases 'X', 'i' and 'M'). */
struct TraceEvent
{
    Tick ts = 0;         ///< virtual start time (ns)
    Tick dur = 0;        ///< duration (ns); 0 for instants
    char ph = 'i';       ///< 'X' complete, 'i' instant, 'M' metadata
    int32_t pid = 0;     ///< cluster node
    int32_t tid = 0;     ///< simulated thread id
    const char *cat = ""; ///< category (literal: "sched", "svm", ...)
    std::string name;
    util::Json args;     ///< null or an object
};

/** Collects events; see file comment. */
class Tracer
{
  public:
    /** A span [start, end] of virtual time (Chrome 'X'). */
    void
    complete(Tick start, Tick end, int pid, int tid, const char *cat,
             std::string name, util::Json args = util::Json())
    {
        record(TraceEvent{start, end - start, 'X', pid, tid, cat,
                          std::move(name), std::move(args)});
    }

    /** A point event (Chrome 'i'). */
    void
    instant(Tick ts, int pid, int tid, const char *cat,
            std::string name, util::Json args = util::Json())
    {
        record(TraceEvent{ts, 0, 'i', pid, tid, cat, std::move(name),
                          std::move(args)});
    }

    /** Name a thread lane in the viewer (Chrome 'M' metadata). */
    void nameThread(int pid, int tid, const std::string &name);

    /**
     * Bound the in-memory event buffer. Once @p cap events are held,
     * further events are counted in dropped() and discarded, so long
     * (e.g. --repeat) runs cannot grow without limit. Metadata ('M')
     * records are exempt: thread names stay resolvable in the viewer.
     */
    void setCapacity(size_t cap) { capacity_ = cap; }
    size_t capacity() const { return capacity_; }

    /** Events discarded because the buffer was at capacity. */
    uint64_t dropped() const { return dropped_; }

    const std::vector<TraceEvent> &events() const { return events_; }
    size_t size() const { return events_.size(); }

    void
    clear()
    {
        events_.clear();
        dropped_ = 0;
    }

    /**
     * Render the Chrome trace-event JSON document. Non-metadata events
     * are ordered by (virtual time, record order), so timestamps are
     * monotone in the output.
     */
    std::string exportChrome() const;

    /** exportChrome() to a file. @return false on I/O failure. */
    bool writeChrome(const std::string &path) const;

  private:
    void
    record(TraceEvent e)
    {
        if (events_.size() >= capacity_ && e.ph != 'M') {
            ++dropped_;
            return;
        }
        events_.push_back(std::move(e));
    }

    std::vector<TraceEvent> events_;
    size_t capacity_ = size_t(1) << 20;
    uint64_t dropped_ = 0;
};

} // namespace sim
} // namespace cables

#endif // CABLES_SIM_TRACE_HH
