/**
 * @file
 * Structured virtual-time tracing.
 *
 * A Tracer collects typed events stamped with *simulated* time: fiber
 * scheduling (spawn / block / wake / finish), SVM protocol activity
 * (faults, diff flushes, write-notice application, migrations),
 * CableS synchronization operations, and SAN messages. Components hold
 * an optional Tracer pointer and record only when one is installed, so
 * untraced runs pay a single branch per site.
 *
 * Export is Chrome trace-event JSON ("traceEvents" array), so any run
 * can be opened directly in Perfetto / chrome://tracing. Events are
 * sorted by virtual time on export; because the simulation is
 * deterministic, two runs with the same seed export byte-identical
 * traces.
 *
 * Convention: pid is the cluster node (0-based; scheduler-level events
 * that have no node use pid 0), tid is the simulated thread id, ts/dur
 * are microseconds of virtual time (Chrome's native unit).
 */

#ifndef CABLES_SIM_TRACE_HH
#define CABLES_SIM_TRACE_HH

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/ticks.hh"
#include "util/json.hh"

namespace cables {
namespace sim {

/** One recorded event (Chrome trace-event phases 'X', 'i' and 'M'). */
struct TraceEvent
{
    Tick ts = 0;         ///< virtual start time (ns)
    Tick dur = 0;        ///< duration (ns); 0 for instants
    char ph = 'i';       ///< 'X' complete, 'i' instant, 'M' metadata
    int32_t pid = 0;     ///< cluster node
    int32_t tid = 0;     ///< simulated thread id
    const char *cat = ""; ///< category (literal: "sched", "svm", ...)
    std::string name;
    util::Json args;     ///< null or an object
    uint64_t id = 0;     ///< flow id for 's'/'t'/'f' phases; 0 = none
};

/**
 * Latency components of a cross-node span. Every tick of a span's
 * duration is attributed to exactly one component: sites add the
 * measured Issue/Queue/Wire/Handler/Reply pieces and endSpan() assigns
 * the remainder to Apply (local CPU work), so the components always
 * sum exactly to the span's virtual duration.
 */
enum class SpanComp
{
    Issue,   ///< local cost before the request leaves (e.g. diff scan)
    Queue,   ///< NIC send/recv window wait + blocked wait for a grant
    Wire,    ///< uncontended end-to-end message latency
    Handler, ///< remote handler CPU (manager / holder / spawn+init)
    Reply,   ///< reply leg issue cost (reserved; 0 at current sites)
    Apply,   ///< local apply / remainder (trap, twin, grant processing)
};

constexpr int kNumSpanComps = 6;

/** The literal component name ("issue", "queue", ...). */
const char *spanCompName(SpanComp c);

/**
 * One causal cross-node span: a protocol transaction (page fetch, diff
 * flush, lock acquire, ...) with a deterministic flow id, an optional
 * parent link (the span that was open on the same simulated thread
 * when this one began), and a per-component latency decomposition.
 */
struct Span
{
    uint64_t flow = 0;   ///< deterministic flow id (1-based, dense)
    uint64_t parent = 0; ///< enclosing span's flow id; 0 = root
    Tick start = 0;      ///< virtual start time (ns)
    Tick end = 0;        ///< virtual end time (ns)
    int32_t pid = 0;     ///< cluster node
    int32_t tid = 0;     ///< simulated thread id
    const char *op = ""; ///< op type (literal: "page_fetch", ...)
    std::array<Tick, kNumSpanComps> comp{}; ///< per-component ticks
    bool open = true;    ///< still between beginSpan and endSpan
};

/** Collects events; see file comment. */
class Tracer
{
  public:
    /** A span [start, end] of virtual time (Chrome 'X'). */
    void
    complete(Tick start, Tick end, int pid, int tid, const char *cat,
             std::string name, util::Json args = util::Json())
    {
        record(TraceEvent{start, end - start, 'X', pid, tid, cat,
                          std::move(name), std::move(args)});
    }

    /** A point event (Chrome 'i'). */
    void
    instant(Tick ts, int pid, int tid, const char *cat,
            std::string name, util::Json args = util::Json())
    {
        record(TraceEvent{ts, 0, 'i', pid, tid, cat, std::move(name),
                          std::move(args)});
    }

    /** Name a thread lane in the viewer (Chrome 'M' metadata). */
    void nameThread(int pid, int tid, const std::string &name);

    /**
     * Turn the causal span layer on. Spans are recorded only while
     * enabled; instrumentation sites hold the returned flow id and pay
     * one branch when spans are off (beginSpan returns 0 and the other
     * span calls no-op on id 0).
     */
    void enableSpans(bool on) { spansEnabled_ = on; }
    bool spansEnabled() const { return spansEnabled_; }

    /**
     * Turn regular ('X'/'i') event recording off while keeping spans.
     * A spans-only tracer (bench --spans without --trace) records no
     * flat events and therefore counts no drops against the event
     * buffer cap.
     */
    void setEventsEnabled(bool on) { eventsEnabled_ = on; }
    bool eventsEnabled() const { return eventsEnabled_; }

    /**
     * Begin a span of op type @p op (a string literal) at virtual time
     * @p start on (pid, tid). Returns the span's flow id, or 0 when
     * spans are disabled or the span buffer is at capacity (dropped
     * spans are counted in droppedSpans() and consume no flow id, so
     * capped exports stay byte-reproducible). Unless @p detached, the
     * span becomes the parent of spans begun on the same tid until
     * endSpan; detached spans (completed later from an event context)
     * record their parent but never enclose others.
     */
    uint64_t beginSpan(const char *op, Tick start, int pid, int tid,
                       bool detached = false);

    /** Attribute @p dt ticks of span @p id to component @p c. */
    void
    spanAdd(uint64_t id, SpanComp c, Tick dt)
    {
        if (id == 0)
            return;
        spans_[id - 1].comp[static_cast<int>(c)] += dt;
    }

    /**
     * Close span @p id at virtual time @p end. The unattributed
     * remainder of the duration goes to SpanComp::Apply; attributing
     * more ticks than the span's duration is a bug and panics.
     */
    void endSpan(uint64_t id, Tick end);

    /**
     * Bound the span buffer like setCapacity bounds events. Spans past
     * the cap are dropped in deterministic (begin) order.
     */
    void setSpanCapacity(size_t cap) { spanCapacity_ = cap; }
    size_t spanCapacity() const { return spanCapacity_; }

    /** Spans discarded because the span buffer was at capacity. */
    uint64_t droppedSpans() const { return droppedSpans_; }

    const std::vector<Span> &spans() const { return spans_; }

    /**
     * Aggregate closed spans into the versioned "cables-spans-report"
     * v1 document: per op type count, exact nearest-rank p50/p99, max,
     * and component totals, all in virtual microseconds.
     */
    util::Json spansReportJson() const;

    /**
     * Bound the in-memory event buffer. Once @p cap events are held,
     * further events are counted in dropped() and discarded, so long
     * (e.g. --repeat) runs cannot grow without limit. Metadata ('M')
     * records are exempt: thread names stay resolvable in the viewer.
     */
    void setCapacity(size_t cap) { capacity_ = cap; }
    size_t capacity() const { return capacity_; }

    /** Events discarded because the buffer was at capacity. */
    uint64_t dropped() const { return dropped_; }

    const std::vector<TraceEvent> &events() const { return events_; }
    size_t size() const { return events_.size(); }

    void
    clear()
    {
        events_.clear();
        dropped_ = 0;
        spans_.clear();
        openSpans_.clear();
        droppedSpans_ = 0;
        nextFlow_ = 1;
    }

    /**
     * Render the Chrome trace-event JSON document. Non-metadata events
     * are ordered by (virtual time, record order), so timestamps are
     * monotone in the output.
     */
    std::string exportChrome() const;

    /** exportChrome() to a file. @return false on I/O failure. */
    bool writeChrome(const std::string &path) const;

  private:
    void
    record(TraceEvent e)
    {
        if (!eventsEnabled_)
            return;
        if (events_.size() >= capacity_ && e.ph != 'M') {
            ++dropped_;
            return;
        }
        events_.push_back(std::move(e));
    }

    /** The 'X' + flow 's'/'t'/'f' events derived from closed spans. */
    std::vector<TraceEvent> spanEvents() const;

    std::vector<TraceEvent> events_;
    size_t capacity_ = size_t(1) << 20;
    uint64_t dropped_ = 0;

    bool spansEnabled_ = false;
    bool eventsEnabled_ = true;
    std::vector<Span> spans_;
    size_t spanCapacity_ = size_t(1) << 20;
    uint64_t droppedSpans_ = 0;
    uint64_t nextFlow_ = 1;
    /** Per-tid stack of open (enclosing) spans, for parent links. */
    std::map<int32_t, std::vector<uint64_t>> openSpans_;
};

/**
 * Validate that @p doc is a well-formed "cables-spans-report" v1
 * document. On failure returns false and stores a reason in @p why.
 */
bool validateSpansReport(const util::Json &doc,
                         std::string *why = nullptr);

} // namespace sim
} // namespace cables

#endif // CABLES_SIM_TRACE_HH
