#include "sim/engine_config.hh"

#include <cstdlib>
#include <thread>

#include "util/logging.hh"

namespace cables {
namespace sim {

namespace {

long
parseLong(const std::string &text, const char *what)
{
    char *end = nullptr;
    long v = std::strtol(text.c_str(), &end, 10);
    fatal_if(end == text.c_str() || *end != '\0',
             "bad {}: '{}' is not an integer", what, text);
    return v;
}

} // namespace

EngineConfig
EngineConfig::forThreads(int n)
{
    EngineConfig cfg;
    if (n > 0) {
        cfg.mode = EngineMode::Parallel;
        cfg.workers = n;
    }
    return cfg;
}

EngineConfig
EngineConfig::fromEnv()
{
    EngineConfig cfg;
    if (const char *t = std::getenv("CABLES_ENGINE_THREADS")) {
        long n = parseLong(t, "CABLES_ENGINE_THREADS");
        fatal_if(n < 0, "CABLES_ENGINE_THREADS must be >= 0, got {}", n);
        cfg = forThreads(static_cast<int>(n));
    }
    if (const char *l = std::getenv("CABLES_ENGINE_LOOKAHEAD"))
        cfg.lookahead = parseLong(l, "CABLES_ENGINE_LOOKAHEAD");
    cfg.validate();
    return cfg;
}

EngineConfig
EngineConfig::parse(const std::string &spec)
{
    EngineConfig cfg;
    if (spec == "serial") {
        // default
    } else if (spec.rfind("parallel", 0) == 0) {
        cfg.mode = EngineMode::Parallel;
        std::string rest = spec.substr(8);
        if (!rest.empty()) {
            fatal_if(rest[0] != ':', "bad engine spec '{}'", spec);
            rest = rest.substr(1);
            size_t colon = rest.find(':');
            cfg.workers = static_cast<int>(
                parseLong(rest.substr(0, colon), "engine worker count"));
            if (colon != std::string::npos) {
                cfg.lookahead = parseLong(rest.substr(colon + 1),
                                          "engine lookahead");
            }
        }
    } else {
        long n = parseLong(spec, "engine spec");
        fatal_if(n < 0, "engine thread count must be >= 0, got {}", n);
        cfg = forThreads(static_cast<int>(n));
    }
    cfg.validate();
    return cfg;
}

int
EngineConfig::resolvedWorkers() const
{
    if (mode != EngineMode::Parallel)
        return 0;
    if (workers > 0)
        return workers;
    unsigned hw = std::thread::hardware_concurrency();
    return hw > 1 ? static_cast<int>(hw) : 1;
}

void
EngineConfig::validate() const
{
    fatal_if(workers < 0, "engine worker count must be >= 0, got {}",
             workers);
    fatal_if(workers > 1024, "engine worker count {} is absurd (max 1024)",
             workers);
    fatal_if(lookahead < -1,
             "engine lookahead must be -1 (auto) or >= 0, got {}",
             lookahead);
    fatal_if(mode == EngineMode::Serial && workers != 0,
             "serial engine mode cannot have workers ({})", workers);
}

std::string
EngineConfig::describe() const
{
    if (mode == EngineMode::Serial)
        return "serial";
    std::string s = "parallel:" + std::to_string(resolvedWorkers());
    if (lookahead >= 0)
        s += ":" + std::to_string(lookahead);
    return s;
}

} // namespace sim
} // namespace cables
