/**
 * @file
 * EngineConfig: the one knob bundle selecting how the DES uses the
 * host machine. Serial mode (the default) is the reference
 * single-host-thread engine; parallel mode adds a worker pool that
 * executes guest compute segments concurrently while the scheduler
 * keeps the operation stream in exact serial order (DESIGN.md §11).
 *
 * Parallel mode changes *wall-clock* behaviour only: every simulated
 * time, metric, trace, check and profile result is bit-identical to
 * serial mode by construction.
 */

#ifndef CABLES_SIM_ENGINE_CONFIG_HH
#define CABLES_SIM_ENGINE_CONFIG_HH

#include <string>

#include "sim/ticks.hh"

namespace cables {
namespace sim {

enum class EngineMode { Serial, Parallel };

struct EngineConfig
{
    EngineMode mode = EngineMode::Serial;

    /** Parallel mode: host worker threads; 0 = one per host core. */
    int workers = 0;

    /**
     * Parallel mode: minimum simulated-time lead (ticks) a thread must
     * hold over all other pending work before its compute segment is
     * handed to a worker; -1 = auto (the network's minimum latency).
     * A tuning knob, never a correctness one.
     */
    Tick lookahead = -1;

    /** The serial reference engine. */
    static EngineConfig serial() { return EngineConfig{}; }

    /** n <= 0: serial; n > 0: parallel with n workers. */
    static EngineConfig forThreads(int n);

    /**
     * Read CABLES_ENGINE_THREADS (unset/0 = serial, N = parallel with
     * N workers) and CABLES_ENGINE_LOOKAHEAD (ticks) from the
     * environment. Malformed values are a fatal() config error.
     */
    static EngineConfig fromEnv();

    /**
     * Parse "serial", "parallel", "parallel:N", "parallel:N:L" or a
     * bare integer (forThreads). Throws FatalError on anything else.
     */
    static EngineConfig parse(const std::string &spec);

    /** Worker-thread count to actually start (>= 1) in parallel mode. */
    int resolvedWorkers() const;

    /** Throw FatalError on out-of-range or inconsistent settings. */
    void validate() const;

    /** Human-readable one-liner ("serial", "parallel:4"). */
    std::string describe() const;

    bool
    operator==(const EngineConfig &o) const
    {
        return mode == o.mode && workers == o.workers &&
               lookahead == o.lookahead;
    }
};

} // namespace sim
} // namespace cables

#endif // CABLES_SIM_ENGINE_CONFIG_HH
