#include "sim/fiber.hh"

#ifdef CABLES_ASAN
#include <sanitizer/common_interface_defs.h>
#endif

#include "util/logging.hh"

namespace cables {
namespace sim {

namespace {

/**
 * The fiber whose trampoline is about to run. makecontext() cannot
 * portably pass pointers, so the target is staged here between
 * switchTo() and the trampoline. Thread-local: the parallel engine
 * resumes fibers from worker host threads too, and the trampoline
 * always runs on the host thread that performed the first switchTo().
 */
thread_local Fiber *startingFiber = nullptr;

} // namespace

Fiber::Fiber(std::function<void()> fn, size_t stack_size)
    : entry(std::move(fn)), stack(new char[stack_size]),
      stackSize_(stack_size)
{
    panic_if(!entry, "Fiber requires an entry function");
    getcontext(&context);
    context.uc_stack.ss_sp = stack.get();
    context.uc_stack.ss_size = stack_size;
    context.uc_link = nullptr;
    makecontext(&context, reinterpret_cast<void (*)()>(&Fiber::trampoline),
                0);
}

Fiber::~Fiber()
{
    if (!started || finished_)
        return;
    // Abandoned mid-run (an aborted simulation): resume one last time
    // and throw Unwind from the suspension point, so the stack unwinds
    // and the frames' destructors release their memory.
    unwinding_ = true;
#ifdef CABLES_ASAN
    __sanitizer_start_switch_fiber(&callerFakeStack_, stack.get(),
                                   stackSize_);
#endif
    swapcontext(&returnContext, &context);
#ifdef CABLES_ASAN
    __sanitizer_finish_switch_fiber(callerFakeStack_, nullptr, nullptr);
#endif
}

void
Fiber::trampoline()
{
    Fiber *self = startingFiber;
    startingFiber = nullptr;
#ifdef CABLES_ASAN
    // First arrival on this stack: no fake stack to restore yet; record
    // where to switch back to.
    __sanitizer_finish_switch_fiber(nullptr, &self->callerStackBottom_,
                                    &self->callerStackSize_);
#endif
    try {
        self->entry();
    } catch (const Unwind &) {
        // Destructor-driven teardown of an abandoned fiber.
    }
    self->finished_ = true;
    // Return to whoever last resumed us; never falls off the context.
    while (true) {
#ifdef CABLES_ASAN
        // The fiber is done: a null fake-stack handle tells ASan to
        // release this stack's fake frames instead of saving them.
        __sanitizer_start_switch_fiber(nullptr, self->callerStackBottom_,
                                       self->callerStackSize_);
#endif
        swapcontext(&self->context, &self->returnContext);
    }
}

void
Fiber::switchTo()
{
    panic_if(finished_, "switching to a finished fiber");
    if (!started) {
        started = true;
        startingFiber = this;
    }
#ifdef CABLES_ASAN
    __sanitizer_start_switch_fiber(&callerFakeStack_, stack.get(),
                                   stackSize_);
#endif
    swapcontext(&returnContext, &context);
#ifdef CABLES_ASAN
    __sanitizer_finish_switch_fiber(callerFakeStack_, nullptr, nullptr);
#endif
}

void
Fiber::switchBack()
{
#ifdef CABLES_ASAN
    __sanitizer_start_switch_fiber(&fiberFakeStack_, callerStackBottom_,
                                   callerStackSize_);
#endif
    swapcontext(&context, &returnContext);
#ifdef CABLES_ASAN
    __sanitizer_finish_switch_fiber(fiberFakeStack_, &callerStackBottom_,
                                    &callerStackSize_);
#endif
    if (unwinding_)
        throw Unwind{};
}

} // namespace sim
} // namespace cables
