#include "sim/fiber.hh"

#include "util/logging.hh"

namespace cables {
namespace sim {

namespace {

/**
 * The fiber whose trampoline is about to run. makecontext() cannot
 * portably pass pointers, so the target is staged here between
 * switchTo() and the trampoline. The simulation is single host-threaded,
 * so a file-static is safe.
 */
Fiber *startingFiber = nullptr;

} // namespace

Fiber::Fiber(std::function<void()> fn, size_t stack_size)
    : entry(std::move(fn)), stack(new char[stack_size])
{
    panic_if(!entry, "Fiber requires an entry function");
    getcontext(&context);
    context.uc_stack.ss_sp = stack.get();
    context.uc_stack.ss_size = stack_size;
    context.uc_link = nullptr;
    makecontext(&context, reinterpret_cast<void (*)()>(&Fiber::trampoline),
                0);
}

Fiber::~Fiber() = default;

void
Fiber::trampoline()
{
    Fiber *self = startingFiber;
    startingFiber = nullptr;
    self->entry();
    self->finished_ = true;
    // Return to whoever last resumed us; never falls off the context.
    while (true)
        swapcontext(&self->context, &self->returnContext);
}

void
Fiber::switchTo()
{
    panic_if(finished_, "switching to a finished fiber");
    if (!started) {
        started = true;
        startingFiber = this;
    }
    swapcontext(&returnContext, &context);
}

void
Fiber::switchBack()
{
    swapcontext(&context, &returnContext);
}

} // namespace sim
} // namespace cables
