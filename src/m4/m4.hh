/**
 * @file
 * The ANL/M4 macro environment used by SPLASH-2-style applications,
 * implemented over both backends:
 *
 *  - On the base (GeNIMA) backend, LOCK/BARRIER map to the native SVM
 *    lock and barrier primitives and G_MALLOC is restricted to the
 *    initialization phase — the programming template of the paper's
 *    Figure 2.
 *  - On the CableS backend, this is the paper's "implementation of the
 *    M4 macros for pthreads": LOCK maps to pthreads mutexes and BARRIER
 *    to the pthread_barrier() extension (Section 3.4).
 */

#ifndef CABLES_M4_M4_HH
#define CABLES_M4_M4_HH

#include <functional>
#include <vector>

#include "cables/runtime.hh"
#include "cables/shared.hh"

namespace cables {
namespace m4 {

using cs::GAddr;
using cs::Runtime;
using net::NodeId;
using sim::Tick;

/** Handle to an M4 lock (LOCKDEC/LOCKINIT). */
using M4Lock = int;

/** Handle to an M4 barrier (BARDEC/BARINIT). */
using M4Barrier = int;

/**
 * One application's M4 environment (MAIN_ENV). Construct inside the
 * master thread; workers share it by reference.
 */
class M4Env
{
  public:
    explicit M4Env(Runtime &rt);

    Runtime &runtime() { return rt; }

    /**
     * G_MALLOC: allocate global shared memory. @p affinity is an
     * optional allocator-site placement hint (see Runtime::malloc).
     */
    GAddr gMalloc(size_t bytes, NodeId affinity = net::InvalidNode);

    /** Typed G_MALLOC convenience. */
    template <typename T>
    cs::GArray<T>
    gMallocArray(size_t n, NodeId affinity = net::InvalidNode)
    {
        return cs::GArray<T>(rt, gMalloc(n * sizeof(T), affinity), n);
    }

    /** CREATE: start a worker. @return dense worker index (0-based). */
    int create(std::function<void()> fn);

    /** WAIT_FOR_END: join all created workers. */
    void waitForEnd();

    /** LOCKINIT. */
    M4Lock lockInit();
    /** LOCK. */
    void lock(M4Lock l);
    /** UNLOCK. */
    void unlock(M4Lock l);

    /** BARINIT. */
    M4Barrier barInit();
    /** BARRIER(b, n). */
    void barrier(M4Barrier b, int n);

    /** CLOCK: current simulated time. */
    Tick clock() const;

    int created() const { return static_cast<int>(workers.size()); }

  private:
    Runtime &rt;
    std::vector<int> workers;       // cables tids
    std::vector<svm::LockId> baseLocks;
    std::vector<svm::BarrierId> baseBarriers;
    bool sealed = false;
};

} // namespace m4
} // namespace cables

#endif // CABLES_M4_M4_HH
