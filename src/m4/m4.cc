#include "m4/m4.hh"

#include "cables/memory.hh"
#include "util/logging.hh"

namespace cables {
namespace m4 {

using cs::Backend;
using cs::CostKind;

M4Env::M4Env(Runtime &rt) : rt(rt)
{}

GAddr
M4Env::gMalloc(size_t bytes, NodeId affinity)
{
    return rt.malloc(bytes, affinity);
}

int
M4Env::create(std::function<void()> fn)
{
    if (!sealed && rt.config().backend == Backend::BaseSvm) {
        // Figure 2 template: once threads exist, the initialization
        // phase is over and allocation is no longer possible.
        rt.memory().sealInitPhase();
        sealed = true;
    }
    int idx = static_cast<int>(workers.size());
    workers.push_back(rt.threadCreate(std::move(fn)));
    return idx;
}

void
M4Env::waitForEnd()
{
    for (int tid : workers)
        rt.join(tid);
    workers.clear();
}

M4Lock
M4Env::lockInit()
{
    if (rt.config().backend == Backend::BaseSvm) {
        baseLocks.push_back(rt.svmLocks().create(rt.selfNode()));
        return static_cast<M4Lock>(baseLocks.size()) - 1;
    }
    return rt.mutexCreate();
}

void
M4Env::lock(M4Lock l)
{
    if (rt.config().backend == Backend::BaseSvm)
        rt.svmLocks().acquire(rt.selfNode(), baseLocks.at(l));
    else
        rt.mutexLock(l);
}

void
M4Env::unlock(M4Lock l)
{
    if (rt.config().backend == Backend::BaseSvm)
        rt.svmLocks().release(rt.selfNode(), baseLocks.at(l));
    else
        rt.mutexUnlock(l);
}

M4Barrier
M4Env::barInit()
{
    if (rt.config().backend == Backend::BaseSvm) {
        baseBarriers.push_back(rt.svmBarriers().create(0));
        return static_cast<M4Barrier>(baseBarriers.size()) - 1;
    }
    return rt.barrierCreate();
}

void
M4Env::barrier(M4Barrier b, int n)
{
    if (rt.config().backend == Backend::BaseSvm)
        rt.svmBarriers().enter(rt.selfNode(), baseBarriers.at(b), n);
    else
        rt.barrier(b, n);
}

Tick
M4Env::clock() const
{
    return rt.now();
}

} // namespace m4
} // namespace cables
